#!/usr/bin/env python
"""CI smoke target: the operations console catches injected faults.

Two short MOST runs under the live monitor (``repro.monitor``):

1. **Faulted** — a mid-run site outage plus a slowed NCSA simulation.
   Must complete under the fault-tolerant policy AND raise at least one
   ``stall`` and one ``slow_site`` alert, every alert payload validating
   against ``repro.monitor/v1``.
2. **Clean** — the same run without faults.  Must raise zero alerts
   while still absorbing the full health + metrics streams.

Exits non-zero on any failure, so CI can gate on
``make monitor-smoke``.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.monitor import validate_alert_payload, validate_health_payload
from repro.most import ExperimentSession, MOSTConfig


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> int:
    config = MOSTConfig().scaled(40)

    print("[1] faulted monitored run (outage + slowed site)")
    faulted = (ExperimentSession(config, run_id="most-monitored")
               .with_fault_tolerance()
               .with_monitoring()
               .with_anomalies()
               .run())
    result = faulted.result
    alerts = faulted.alerts
    for alert in alerts:
        where = f" site={alert.site}" if alert.site else ""
        print(f"    t={alert.time:8.1f}s {alert.severity:<8} "
              f"{alert.kind}{where}: {alert.message}")
    if not result.completed:
        fail(f"faulted run did not complete (stopped at "
             f"{result.steps_completed} steps)")
    kinds = {a.kind for a in alerts}
    if "stall" not in kinds:
        fail(f"no stall alert during the injected outage (got {kinds})")
    if "slow_site" not in kinds:
        fail(f"no slow_site alert for the slowed site (got {kinds})")
    for alert in alerts:
        validate_alert_payload(alert.to_payload("monitor-console"))
    stream = faulted.rollups["stream"]
    if stream["received"] == 0:
        fail("console absorbed no streamed metric samples")
    print(f"    completed {result.steps_completed} steps; "
          f"{len(alerts)} alerts; {stream['received']} metric samples")

    print("[2] clean monitored run (no faults)")
    clean = (ExperimentSession(config, run_id="most-monitored")
             .with_fault_tolerance()
             .with_monitoring()
             .run())
    if not clean.result.completed:
        fail("clean run did not complete")
    if clean.alerts:
        fail(f"clean run raised alerts: "
             f"{[a.kind for a in clean.alerts]}")
    rollups = clean.rollups
    if rollups["stream"]["received"] == 0:
        fail("clean console absorbed no streamed metric samples")
    kit = clean.monitoring
    for publisher in kit.publishers.values():
        validate_health_payload(publisher.service_data.value("health"))
    if rollups["health"].get("coordinator") != "stopped":
        fail(f"coordinator health never reached 'stopped': "
             f"{rollups['health']}")
    print(f"    completed {clean.result.steps_completed} steps; "
          f"0 alerts; {rollups['stream']['received']} metric samples; "
          f"health sources: {', '.join(sorted(rollups['health']))}")

    print("monitor smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
